package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a continuous probability distribution that can be sampled with an
// explicit random source. All stochastic model inputs in the toolkit
// (inter-arrival times, task runtimes, failure inter-arrivals, repair times)
// are expressed as Dist values so experiments can swap distributions without
// touching model code.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution mean (NaN if undefined).
	Mean() float64
	// String names the distribution with its parameters.
	String() string
}

// Deterministic always returns Value. Useful for controlled experiments.
type Deterministic struct{ Value float64 }

// Sample implements Dist.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Exponential has rate Rate (mean 1/Rate). It models memoryless arrivals
// (Poisson processes).
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) String() string { return fmt.Sprintf("exp(rate=%g)", e.Rate) }

// Normal is the Gaussian distribution, truncated at zero when sampled via
// SamplePositive by models that need non-negative variates.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(%g,%g)", n.Mu, n.Sigma) }

// LogNormal has underlying normal parameters Mu and Sigma. The Grid Workloads
// Archive analyses the paper cites ([39]) model task runtimes as lognormal.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(%g,%g)", l.Mu, l.Sigma) }

// Weibull has shape K and scale Lambda. With K<1 it produces the bursty,
// decreasing-hazard inter-arrival times observed for failures in large-scale
// distributed systems (paper refs [26], [27]).
type Weibull struct{ K, Lambda float64 }

// Sample implements Dist (inverse-CDF method).
func (w Weibull) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

func (w Weibull) String() string { return fmt.Sprintf("weibull(k=%g,λ=%g)", w.K, w.Lambda) }

// Pareto is the heavy-tailed Pareto distribution with minimum Xm and tail
// index Alpha. Heavy tails drive the "vicissitude" phenomena the paper
// describes for big-data workloads (§2.1, ref [22]).
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist (inverse-CDF method).
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist (infinite for Alpha ≤ 1).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }

// Erlang is the sum of K independent exponentials with the given Rate each;
// it models multi-stage service times.
type Erlang struct {
	K    int
	Rate float64
}

// Sample implements Dist.
func (e Erlang) Sample(r *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += r.ExpFloat64() / e.Rate
	}
	return sum
}

// Mean implements Dist.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

func (e Erlang) String() string { return fmt.Sprintf("erlang(k=%d,rate=%g)", e.K, e.Rate) }

// Zipf samples integers in [1, N] with frequency ∝ rank^-S, returned as
// float64. It models popularity skew (content, users, functions).
type Zipf struct {
	S float64 // exponent > 1 for the stdlib generator; values ≤ 1 are clamped
	N uint64
}

// Sample implements Dist.
func (z Zipf) Sample(r *rand.Rand) float64 {
	s := z.S
	if s <= 1 {
		s = 1.0001
	}
	n := z.N
	if n == 0 {
		n = 1
	}
	gen := rand.NewZipf(r, s, 1, n-1)
	return float64(gen.Uint64() + 1)
}

// Mean implements Dist (approximated numerically).
func (z Zipf) Mean() float64 {
	var num, den float64
	for k := uint64(1); k <= z.N; k++ {
		w := math.Pow(float64(k), -z.S)
		num += float64(k) * w
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func (z Zipf) String() string { return fmt.Sprintf("zipf(s=%g,n=%d)", z.S, z.N) }

// Truncate wraps a distribution, clamping samples into [Lo, Hi]. Use it to
// keep runtimes and sizes physical.
type Truncate struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (t Truncate) Sample(r *rand.Rand) float64 {
	x := t.D.Sample(r)
	if x < t.Lo {
		return t.Lo
	}
	if t.Hi > t.Lo && x > t.Hi {
		return t.Hi
	}
	return x
}

// Mean implements Dist; it reports the untruncated mean clamped to the range
// as a cheap approximation.
func (t Truncate) Mean() float64 {
	m := t.D.Mean()
	if m < t.Lo {
		return t.Lo
	}
	if t.Hi > t.Lo && m > t.Hi {
		return t.Hi
	}
	return m
}

func (t Truncate) String() string { return fmt.Sprintf("trunc(%v,[%g,%g])", t.D, t.Lo, t.Hi) }

// Compile-time interface compliance checks.
var (
	_ Dist = Deterministic{}
	_ Dist = Uniform{}
	_ Dist = Exponential{}
	_ Dist = Normal{}
	_ Dist = LogNormal{}
	_ Dist = Weibull{}
	_ Dist = Pareto{}
	_ Dist = Erlang{}
	_ Dist = Zipf{}
	_ Dist = Truncate{}
)
