package stats

import (
	"math"
	"sort"
)

// This file implements the two-sample Kolmogorov–Smirnov test — the
// validation instrument C15–C17 call for ("validating that the model is
// indeed accurate enough is ... a key scientific challenge"): it lets
// experiments check that generated workloads and failure traces actually
// follow their configured distributions, and that two systems' output
// distributions differ (or not) beyond noise.

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs, in [0,1].
	D float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov distribution
	// approximation; accurate for sample sizes ≳ 25).
	PValue float64
}

// Reject reports whether the null hypothesis (same distribution) is
// rejected at significance alpha.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KSTest runs the two-sample KS test on xs and ys. Empty inputs yield a
// zero statistic with p-value 1.
func KSTest(xs, ys []float64) KSResult {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return KSResult{D: 0, PValue: 1}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			// Tied values: step both ECDFs past the tie before measuring,
			// otherwise identical samples report a spurious distance.
			v := a[i]
			for i < n && a[i] == v {
				i++
			}
			for j < m && b[j] == v {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	return KSResult{D: d, PValue: ksPValue((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)}
}

// ksPValue evaluates the Kolmogorov distribution tail Q(λ) = 2 Σ (−1)^{k−1}
// exp(−2 k² λ²) (Numerical Recipes formulation).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
