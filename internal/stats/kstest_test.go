package stats

import (
	"math/rand"
	"testing"
)

func samples(d Dist, n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

func TestKSTestAcceptsSameDistribution(t *testing.T) {
	xs := samples(Exponential{Rate: 1}, 2000, 1)
	ys := samples(Exponential{Rate: 1}, 2000, 2)
	res := KSTest(xs, ys)
	if res.Reject(0.01) {
		t.Errorf("same distribution rejected: D=%v p=%v", res.D, res.PValue)
	}
}

func TestKSTestRejectsDifferentDistributions(t *testing.T) {
	cases := []struct {
		name string
		a, b Dist
	}{
		{"exp-vs-weibull", Exponential{Rate: 1}, Weibull{K: 0.5, Lambda: 1}},
		{"normal-shift", Normal{Mu: 0, Sigma: 1}, Normal{Mu: 0.5, Sigma: 1}},
		{"uniform-vs-pareto", Uniform{Lo: 0, Hi: 2}, Pareto{Xm: 0.5, Alpha: 2}},
	}
	for _, c := range cases {
		xs := samples(c.a, 2000, 3)
		ys := samples(c.b, 2000, 4)
		res := KSTest(xs, ys)
		if !res.Reject(0.01) {
			t.Errorf("%s: not rejected (D=%v p=%v)", c.name, res.D, res.PValue)
		}
	}
}

func TestKSTestValidatesWorkloadGenerators(t *testing.T) {
	// The C16 use: a generator configured with lognormal runtimes must
	// produce samples indistinguishable from that lognormal.
	want := LogNormal{Mu: 4.5, Sigma: 1.0}
	got := samples(want, 3000, 5)
	ref := samples(LogNormal{Mu: 4.5, Sigma: 1.0}, 3000, 6)
	if res := KSTest(got, ref); res.Reject(0.01) {
		t.Errorf("generator drifted from its configured distribution: %+v", res)
	}
	// And a mis-configured generator is caught.
	bad := samples(LogNormal{Mu: 5.0, Sigma: 1.0}, 3000, 7)
	if res := KSTest(bad, ref); !res.Reject(0.01) {
		t.Errorf("mis-configured generator not caught: %+v", res)
	}
}

func TestKSTestDegenerateInputs(t *testing.T) {
	if res := KSTest(nil, []float64{1}); res.D != 0 || res.PValue != 1 {
		t.Errorf("empty input: %+v", res)
	}
	res := KSTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if res.D != 0 {
		t.Errorf("identical samples D=%v", res.D)
	}
	// Disjoint supports: D = 1, p ≈ 0.
	res = KSTest([]float64{1, 2, 3, 4, 5, 6, 7, 8}, []float64{100, 101, 102, 103, 104, 105, 106, 107})
	if res.D != 1 {
		t.Errorf("disjoint supports D=%v, want 1", res.D)
	}
	if !res.Reject(0.05) {
		t.Errorf("disjoint supports not rejected: p=%v", res.PValue)
	}
}

func TestKSPValueMonotone(t *testing.T) {
	last := 1.0
	for _, lambda := range []float64{0, 0.3, 0.6, 1.0, 1.5, 2.0} {
		p := ksPValue(lambda)
		if p > last+1e-12 {
			t.Errorf("p-value not monotone at λ=%v: %v > %v", lambda, p, last)
		}
		if p < 0 || p > 1 {
			t.Errorf("p-value %v out of [0,1]", p)
		}
		last = p
	}
}
