// Package stats provides the statistical substrate of the MCS toolkit:
// descriptive statistics, empirical distributions, time series, and the
// random-variate distributions used by workload, failure, and mobility
// models. The paper (§3.3) names "quantitative research ... statistical
// modeling of workloads, failures" as a pillar of the MCS methodology; this
// package is that pillar.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean, variance (Welford's algorithm), min, and
// max in a single pass without storing samples. The zero value is ready to
// use.
type Online struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// Count returns the number of samples seen.
func (o *Online) Count() uint64 { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// CV returns the coefficient of variation (std/mean), or 0 when the mean is 0.
func (o *Online) CV() float64 {
	if o.mean == 0 {
		return 0
	}
	return o.Std() / math.Abs(o.mean)
}

// Summary holds one-shot descriptive statistics of a sample.
type Summary struct {
	Count                   int
	Mean, Std, CV           float64
	Min, Max                float64
	P25, P50, P90, P95, P99 float64
}

// Summarize computes descriptive statistics of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var o Online
	for _, x := range sorted {
		o.Add(x)
	}
	return Summary{
		Count: len(sorted),
		Mean:  o.Mean(),
		Std:   o.Std(),
		CV:    o.CV(),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P25:   quantileSorted(sorted, 0.25),
		P50:   quantileSorted(sorted, 0.50),
		P90:   quantileSorted(sorted, 0.90),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
	}
}

// String renders the summary as a compact single line for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		s.Count, s.Mean, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Std()
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs under the Student-t distribution: t(0.975, n-1) · s/√n. It returns
// 0 with fewer than two samples, where the interval is undefined. Used by
// repetition-aware experiment campaigns to report mean ± CI instead of
// bare extrema.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * Std(xs) / math.Sqrt(float64(n))
}

// CI95Pooled returns the half-width of the 95% confidence interval for
// one group's mean when xs consists of `groups` equal contiguous groups of
// replicates: t(0.975, n−groups) · s_w/√(n/groups), where s_w² is the
// pooled within-group variance (the one-way-ANOVA residual). Pooling
// variance across groups — but never their systematic differences —
// is what a repetition campaign over a parameter grid quotes: the
// uncertainty of each grid point's mean, not the spread of the grid.
// With groups == 1 it reduces exactly to CI95. It returns 0 when xs does
// not split evenly into groups or has fewer than two replicates per group.
func CI95Pooled(xs []float64, groups int) float64 {
	n := len(xs)
	if groups < 1 || n == 0 || n%groups != 0 {
		return 0
	}
	per := n / groups
	if per < 2 {
		return 0
	}
	var ssw float64
	for g := 0; g < groups; g++ {
		grp := xs[g*per : (g+1)*per]
		m := Mean(grp)
		for _, x := range grp {
			ssw += (x - m) * (x - m)
		}
	}
	df := n - groups
	sw := math.Sqrt(ssw / float64(df))
	return tCritical95(df) * sw / math.Sqrt(float64(per))
}

// t975 holds two-sided 95% Student-t critical values for df 1..30.
var t975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% critical value of Student's t with
// df degrees of freedom (tabulated to df 30, a few anchors beyond, then
// the normal limit 1.96).
func tCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(t975):
		return t975[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// ECDF is an empirical cumulative distribution function over a fixed sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns P(X ≤ x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 { return quantileSorted(e.sorted, q) }

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Histogram counts samples into uniform bins over [lo, hi). Samples outside
// the range land in the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram returns a histogram with bins uniform bins spanning [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Quantile returns an approximate q-quantile assuming uniformity within bins.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, the
// instrument used to detect time-correlated behaviour (e.g. failure bursts,
// paper §2.2).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	mean := Mean(xs)
	var num, den float64
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// LinearFit holds the result of an ordinary-least-squares line fit.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits y = Slope*x + Intercept by least squares. Used by the Reg
// autoscaler and trend analyses.
func FitLine(xs, ys []float64) LinearFit {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }
