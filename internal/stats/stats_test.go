package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineMatchesDirectComputation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.Count() != 8 {
		t.Fatalf("count=%d", o.Count())
	}
	if !almostEqual(o.Mean(), 5, 1e-12) {
		t.Errorf("mean=%v, want 5", o.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if !almostEqual(o.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("var=%v, want %v", o.Var(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("min=%v max=%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.CV() != 0 {
		t.Error("zero-value Online must report zeros")
	}
	o.Add(3)
	if o.Var() != 0 || o.Mean() != 3 || o.Min() != 3 || o.Max() != 3 {
		t.Error("single-sample stats wrong")
	}
}

// Property: Online mean/var agree with two-pass formulas on random samples.
func TestOnlineProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, v := range raw {
			xs[i] = float64(v)
			o.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return almostEqual(o.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEqual(o.Var(), wantVar, 1e-6*(1+wantVar))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v)=%v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if s.Count != 4 || !almostEqual(s.Mean, 25, 1e-12) || s.Min != 10 || s.Max != 40 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty summarize must be zero value")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ECDF(%v)=%v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len=%d", e.Len())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d count=%d, want 10", i, c)
		}
	}
	if h.Total() != 100 {
		t.Errorf("total=%d", h.Total())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median=%v out of [4,6]", med)
	}
	// Out-of-range samples clamp into edge bins.
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Error("edge clamping broken")
	}
}

func TestAutocorrelationDetectsPeriodicity(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	if ac := Autocorrelation(xs, 20); ac < 0.9 {
		t.Errorf("lag-20 autocorrelation of period-20 signal = %v, want ≥0.9", ac)
	}
	if ac := Autocorrelation(xs, 10); ac > -0.9 {
		t.Errorf("lag-10 (half-period) autocorrelation = %v, want ≤-0.9", ac)
	}
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Error("degenerate lags must return 0")
	}
}

func TestFitLineRecoversKnownLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	f := FitLine(xs, ys)
	if !almostEqual(f.Slope, 3, 1e-9) || !almostEqual(f.Intercept, 2, 1e-9) {
		t.Errorf("fit=%+v, want slope 3 intercept 2", f)
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Errorf("R2=%v, want 1", f.R2)
	}
	if !almostEqual(f.Predict(10), 32, 1e-9) {
		t.Errorf("predict(10)=%v", f.Predict(10))
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if f := FitLine([]float64{1}, []float64{1}); f.Slope != 0 {
		t.Error("n<2 must return zero fit")
	}
	f := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || !almostEqual(f.Intercept, 2, 1e-12) {
		t.Errorf("constant-x fit=%+v", f)
	}
}

func TestDistributionMeansConvergeToAnalytic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 200_000
	dists := []Dist{
		Deterministic{Value: 4},
		Uniform{Lo: 1, Hi: 3},
		Exponential{Rate: 0.5},
		Normal{Mu: 7, Sigma: 2},
		LogNormal{Mu: 0.5, Sigma: 0.4},
		Weibull{K: 0.7, Lambda: 10},
		Pareto{Xm: 1, Alpha: 3},
		Erlang{K: 3, Rate: 1.5},
	}
	for _, d := range dists {
		var o Online
		for i := 0; i < n; i++ {
			o.Add(d.Sample(r))
		}
		want := d.Mean()
		tol := 0.05 * (math.Abs(want) + 1)
		if !almostEqual(o.Mean(), want, tol) {
			t.Errorf("%v: empirical mean %v, analytic %v", d, o.Mean(), want)
		}
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(p.Mean(), 1) {
		t.Error("Pareto alpha<=1 must have infinite mean")
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	z := Zipf{S: 1.5, N: 100}
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		v := int(z.Sample(r))
		if v < 1 || v > 100 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] {
		t.Errorf("rank1=%d not more popular than rank10=%d", counts[1], counts[10])
	}
	if z.Mean() <= 1 {
		t.Errorf("zipf mean=%v", z.Mean())
	}
}

func TestTruncateClampsSamples(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := Truncate{D: Normal{Mu: 0, Sigma: 10}, Lo: 1, Hi: 2}
	for i := 0; i < 1000; i++ {
		x := d.Sample(r)
		if x < 1 || x > 2 {
			t.Fatalf("truncated sample %v escaped [1,2]", x)
		}
	}
	if m := d.Mean(); m < 1 || m > 2 {
		t.Errorf("truncated mean %v escaped [1,2]", m)
	}
}

func TestTimeSeriesStepSemantics(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(0, 1)
	ts.Add(10*time.Second, 3)
	ts.Add(20*time.Second, 0)
	if got := ts.At(-time.Second); got != 0 {
		t.Errorf("At(before first)=%v", got)
	}
	if got := ts.At(5 * time.Second); got != 1 {
		t.Errorf("At(5s)=%v, want 1", got)
	}
	if got := ts.At(10 * time.Second); got != 3 {
		t.Errorf("At(10s)=%v, want 3", got)
	}
	// Integral over [0,20] = 1*10 + 3*10 = 40.
	if got := ts.Integral(0, 20*time.Second); !almostEqual(got, 40, 1e-9) {
		t.Errorf("Integral=%v, want 40", got)
	}
	if got := ts.TimeAverage(0, 20*time.Second); !almostEqual(got, 2, 1e-9) {
		t.Errorf("TimeAverage=%v, want 2", got)
	}
}

func TestTimeSeriesOutOfOrderInsert(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(10*time.Second, 10)
	ts.Add(5*time.Second, 5)
	ts.Add(1*time.Second, 1)
	pts := ts.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("points not sorted: %v", pts)
		}
	}
	if ts.At(6*time.Second) != 5 {
		t.Errorf("At(6s)=%v, want 5", ts.At(6*time.Second))
	}
}

func TestTimeSeriesResample(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(0, 1)
	ts.Add(3*time.Second, 2)
	got := ts.Resample(0, 6*time.Second, time.Second)
	want := []float64{1, 1, 1, 2, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("resample len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resample[%d]=%v, want %v", i, got[i], want[i])
		}
	}
	if ts.MaxValue() != 2 || ts.End() != 3*time.Second {
		t.Errorf("MaxValue=%v End=%v", ts.MaxValue(), ts.End())
	}
}

func BenchmarkOnlineAdd(b *testing.B) {
	var o Online
	for i := 0; i < b.N; i++ {
		o.Add(float64(i & 1023))
	}
}

func BenchmarkWeibullSample(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := Weibull{K: 0.7, Lambda: 10}
	for i := 0; i < b.N; i++ {
		_ = w.Sample(r)
	}
}

func TestCI95(t *testing.T) {
	if got := CI95(nil); got != 0 {
		t.Errorf("CI95(nil) = %v", got)
	}
	if got := CI95([]float64{3}); got != 0 {
		t.Errorf("CI95(single) = %v", got)
	}
	// n=4, values 1..4: mean 2.5, s ≈ 1.2910, t(0.975,3) = 3.182,
	// half-width = 3.182 * s/2 ≈ 2.0539.
	got := CI95([]float64{1, 2, 3, 4})
	if math.Abs(got-2.0539) > 0.001 {
		t.Errorf("CI95(1..4) = %v, want ≈2.0539", got)
	}
	// Identical samples: zero-width interval.
	if got := CI95([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("CI95(constant) = %v, want 0", got)
	}
	// Large n approaches the normal critical value: for n=200 the
	// half-width must use 1.96, not a small-sample t.
	big := make([]float64, 200)
	for i := range big {
		big[i] = float64(i % 2) // alternating 0/1, s ≈ 0.5013
	}
	want := 1.96 * Std(big) / math.Sqrt(200)
	if got := CI95(big); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95(n=200) = %v, want %v", got, want)
	}
}

func TestCI95Pooled(t *testing.T) {
	// One group reduces exactly to CI95.
	xs := []float64{1, 2, 3, 4}
	if got, want := CI95Pooled(xs, 1), CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95Pooled(xs, 1) = %v, want CI95 = %v", got, want)
	}
	// Two groups far apart but with zero within-group spread: the pooled
	// CI must be 0 — systematic between-group differences never leak in.
	apart := []float64{10, 10, 10, 1000, 1000, 1000}
	if got := CI95Pooled(apart, 2); got != 0 {
		t.Errorf("CI95Pooled(between-group spread only) = %v, want 0", got)
	}
	// Hand check: groups (0,2) and (10,14): SSW = 2 + 8 = 10, df = 2,
	// s_w = √5, half-width = t(0.975,2) · √5/√2 = 4.303·1.5811 = 6.803.
	got := CI95Pooled([]float64{0, 2, 10, 14}, 2)
	if math.Abs(got-6.8034) > 0.001 {
		t.Errorf("CI95Pooled hand case = %v, want ≈6.8034", got)
	}
	// Degenerate shapes return 0.
	for name, c := range map[string]struct {
		xs     []float64
		groups int
	}{
		"empty":         {nil, 1},
		"zero groups":   {xs, 0},
		"uneven split":  {[]float64{1, 2, 3}, 2},
		"one per group": {[]float64{1, 2}, 2},
	} {
		if got := CI95Pooled(c.xs, c.groups); got != 0 {
			t.Errorf("%s: CI95Pooled = %v, want 0", name, got)
		}
	}
}
