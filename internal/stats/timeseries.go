package stats

import (
	"math"
	"sort"
	"time"
)

// Point is one observation in a time series.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-ordered sequence of (time, value) observations.
// It backs demand/supply curves for elasticity analysis, utilization traces,
// and monitoring histories for autoscalers.
type TimeSeries struct {
	points []Point
}

// NewTimeSeries returns an empty series.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// Add appends an observation. Observations should be added in non-decreasing
// time order; out-of-order points are inserted at the right position.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	n := len(ts.points)
	if n == 0 || ts.points[n-1].T <= t {
		ts.points = append(ts.points, Point{T: t, V: v})
		return
	}
	idx := sort.Search(n, func(i int) bool { return ts.points[i].T > t })
	ts.points = append(ts.points, Point{})
	copy(ts.points[idx+1:], ts.points[idx:])
	ts.points[idx] = Point{T: t, V: v}
}

// Len returns the number of observations.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns a copy of the observations.
func (ts *TimeSeries) Points() []Point {
	return append([]Point(nil), ts.points...)
}

// At returns the step-function value at time t: the value of the most recent
// observation with T ≤ t, or 0 before the first observation.
func (ts *TimeSeries) At(t time.Duration) float64 {
	idx := sort.Search(len(ts.points), func(i int) bool { return ts.points[i].T > t })
	if idx == 0 {
		return 0
	}
	return ts.points[idx-1].V
}

// Values returns the observation values in time order.
func (ts *TimeSeries) Values() []float64 {
	vs := make([]float64, len(ts.points))
	for i, p := range ts.points {
		vs[i] = p.V
	}
	return vs
}

// Window returns the values of observations with from ≤ T < to.
func (ts *TimeSeries) Window(from, to time.Duration) []float64 {
	var vs []float64
	for _, p := range ts.points {
		if p.T >= from && p.T < to {
			vs = append(vs, p.V)
		}
	}
	return vs
}

// Integral returns the time integral of the step function over [from, to],
// in value·seconds.
func (ts *TimeSeries) Integral(from, to time.Duration) float64 {
	if to <= from || len(ts.points) == 0 {
		return 0
	}
	total := 0.0
	cur := ts.At(from)
	last := from
	for _, p := range ts.points {
		if p.T <= from {
			continue
		}
		if p.T >= to {
			break
		}
		total += cur * (p.T - last).Seconds()
		cur = p.V
		last = p.T
	}
	total += cur * (to - last).Seconds()
	return total
}

// TimeAverage returns the time-weighted mean of the step function over
// [from, to].
func (ts *TimeSeries) TimeAverage(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return ts.Integral(from, to) / (to - from).Seconds()
}

// Resample converts the series into a fixed-interval series over [from, to)
// by sampling the step function at each interval start. It is used to align
// demand and supply curves before computing elasticity metrics.
func (ts *TimeSeries) Resample(from, to, interval time.Duration) []float64 {
	if interval <= 0 || to <= from {
		return nil
	}
	n := int((to - from) / interval)
	out := make([]float64, 0, n)
	for t := from; t < to; t += interval {
		out = append(out, ts.At(t))
	}
	return out
}

// End returns the time of the last observation, or 0 if empty.
func (ts *TimeSeries) End() time.Duration {
	if len(ts.points) == 0 {
		return 0
	}
	return ts.points[len(ts.points)-1].T
}

// MaxValue returns the largest observed value, or 0 if empty.
func (ts *TimeSeries) MaxValue() float64 {
	maxV := math.Inf(-1)
	if len(ts.points) == 0 {
		return 0
	}
	for _, p := range ts.points {
		if p.V > maxV {
			maxV = p.V
		}
	}
	return maxV
}
