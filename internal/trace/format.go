package trace

// The pluggable trace-format registry. A Format serializes a
// workload.Workload to a file and parses it back; scenario documents name
// formats declaratively ("workload": {"trace": "...", "format": "mcw"}),
// so any trace-capable scenario can read — and export — any registered
// format. The empty format name resolves by file extension, defaulting to
// GWF for backward compatibility with pre-registry documents.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mcs/internal/workload"
)

// ErrUnknownFormat reports a format name missing from the registry.
var ErrUnknownFormat = errors.New("trace: unknown format")

// Format reads and writes one on-disk trace representation.
type Format interface {
	// Name is the registry key ("gwf", "mcw", ...).
	Name() string
	// Read parses a trace into a workload.
	Read(in io.Reader) (*workload.Workload, error)
	// Write serializes a workload. Formats document whether the encoding
	// is exact; only exact formats guarantee byte-identical replay.
	Write(out io.Writer, w *workload.Workload) error
}

var formats = map[string]Format{}

// RegisterFormat adds a format to the registry. Called from init functions;
// duplicate or empty names are programming errors.
func RegisterFormat(f Format) {
	name := f.Name()
	if name == "" {
		panic("trace: RegisterFormat with empty name")
	}
	if _, dup := formats[name]; dup {
		panic(fmt.Sprintf("trace: duplicate format %q", name))
	}
	formats[name] = f
}

// Formats returns the registered format names in sorted order.
func Formats() []string {
	names := make([]string, 0, len(formats))
	for name := range formats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FormatByName resolves a format name. The empty name is an error here;
// use ResolveFormat when a file path is available to sniff from.
func FormatByName(name string) (Format, error) {
	f, ok := formats[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownFormat, name, strings.Join(Formats(), ", "))
	}
	return f, nil
}

// ResolveFormat resolves an explicit format name, or — when name is empty —
// sniffs from the path's extension (".mcw" → mcw, anything else → gwf, the
// historical default of the datacenter scenario's workload.trace field).
func ResolveFormat(name, path string) (Format, error) {
	if name != "" {
		return FormatByName(name)
	}
	if ext := strings.TrimPrefix(filepath.Ext(path), "."); ext != "" {
		if f, ok := formats[ext]; ok {
			return f, nil
		}
	}
	return FormatByName(FormatGWF)
}

// Ref is the shared "workload" sub-document of trace-capable scenarios:
// a trace path plus an optional format name. Adapters embed it in their
// workload block so the declarative vocabulary cannot drift between kinds.
type Ref struct {
	Trace  string `json:"trace"`
	Format string `json:"format"`
}

// SourceFor selects the workload source a scenario document declares: the
// referenced trace file when ref names one, else synthetic generation from
// gen under an RNG seeded with seed. This is the one place the
// trace-vs-synthetic rule lives; every trace-capable adapter routes
// through it.
func SourceFor(ref Ref, seed int64, gen func(r *rand.Rand) (*workload.Workload, error)) workload.Source {
	if ref.Trace != "" {
		return File{Path: ref.Trace, Format: ref.Format}
	}
	return workload.Synthetic{Seed: seed, Gen: gen}
}

// File is the trace-backed workload source: it opens Path and parses it
// with the named (or sniffed) format. It implements workload.Source.
type File struct {
	Path string
	// Format names the registered format; empty sniffs from the extension.
	Format string
}

// Load implements workload.Source.
func (f File) Load() (*workload.Workload, error) {
	format, err := ResolveFormat(f.Format, f.Path)
	if err != nil {
		return nil, err
	}
	file, err := os.Open(f.Path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	w, err := format.Read(file)
	if err != nil {
		return nil, fmt.Errorf("trace %s (%s): %w", f.Path, format.Name(), err)
	}
	return w, nil
}

// WriteFile serializes w to path in the named (or sniffed) format.
func WriteFile(path, formatName string, w *workload.Workload) error {
	format, err := ResolveFormat(formatName, path)
	if err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := format.Write(file, w); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Registered format names.
const (
	FormatGWF = "gwf"
	FormatMCW = "mcw"
)

// gwfFormat adapts the package-level GWF Read/Write to the registry.
// GWF stores times as millisecond-precision seconds, so it is lossy for
// sub-millisecond workloads; mcw is the exact native format.
type gwfFormat struct{}

func (gwfFormat) Name() string                                  { return FormatGWF }
func (gwfFormat) Read(in io.Reader) (*workload.Workload, error) { return Read(in) }
func (gwfFormat) Write(out io.Writer, w *workload.Workload) error {
	return Write(out, w)
}

func init() {
	RegisterFormat(gwfFormat{})
	RegisterFormat(mcwFormat{})
}
