package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcs/internal/workload"
)

// exactWorkload builds a workload exercising every field the native format
// must preserve: sub-millisecond times (lossy in GWF), deps, deadlines,
// accelerators, and a user name containing the CSV delimiter.
func exactWorkload() *workload.Workload {
	return &workload.Workload{Jobs: []workload.Job{
		{
			ID: 1, User: "alice", Submit: 1234567891, // ns, not ms-round
			Deadline: 99 * time.Second,
			Tasks: []workload.Task{
				{ID: 1, Job: 1, Cores: 2, MemoryMB: 512, Runtime: 1500000001},
				{ID: 2, Job: 1, Cores: 1, MemoryMB: 128, Runtime: 7, Deps: []workload.TaskID{1}, Accelerator: "gpu"},
			},
		},
		{
			ID: 2, User: "comma,user", Submit: 2 * time.Second,
			Tasks: []workload.Task{
				{ID: 3, Job: 2, Cores: 1, MemoryMB: 64, Runtime: time.Millisecond, Deps: []workload.TaskID{}},
			},
		},
	}}
}

func TestMCWRoundTripIsExact(t *testing.T) {
	w := exactWorkload()
	var buf bytes.Buffer
	if err := (mcwFormat{}).Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := mcwFormat{}.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the one representational difference: empty vs nil deps.
	for i := range w.Jobs {
		for k := range w.Jobs[i].Tasks {
			if len(w.Jobs[i].Tasks[k].Deps) == 0 {
				w.Jobs[i].Tasks[k].Deps = nil
			}
		}
	}
	if !reflect.DeepEqual(w, got) {
		t.Errorf("round trip altered workload:\n want %+v\n  got %+v", w, got)
	}
}

func TestMCWSecondRoundTripIsByteStable(t *testing.T) {
	var first, second bytes.Buffer
	if err := (mcwFormat{}).Write(&first, exactWorkload()); err != nil {
		t.Fatal(err)
	}
	w, err := mcwFormat{}.Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := (mcwFormat{}).Write(&second, w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("write/read/write not byte-stable:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestMCWColumnOrderIsSelfDescribing(t *testing.T) {
	// Columns bound by name: a reordered, partial header still parses.
	in := strings.Join([]string{
		"#mcw v1",
		"#columns user,job,task,submit_ns,runtime_ns,cores,memory_mb",
		"bob,3,7,1000,2000,4,256",
	}, "\n")
	w, err := mcwFormat{}.Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].User != "bob" || w.Jobs[0].ID != 3 {
		t.Fatalf("parsed %+v", w.Jobs)
	}
	task := w.Jobs[0].Tasks[0]
	if task.ID != 7 || task.Runtime != 2000 || task.Cores != 4 || task.MemoryMB != 256 {
		t.Errorf("task = %+v", task)
	}
}

func TestMCWRejectsMalformedHeaders(t *testing.T) {
	cases := map[string]string{
		"empty input":             "",
		"wrong magic":             "# MCS grid workload format v1\n1 1 0 1 1 1 u -\n",
		"no columns line":         "#mcw v1\n",
		"record before columns":   "#mcw v1\n1,1,0,1,1,1,u\n",
		"missing required column": "#mcw v1\n#columns job,task,submit_ns\n",
		"duplicate column":        "#mcw v1\n#columns job,job,task,submit_ns,runtime_ns,cores,memory_mb,user\n",
		"empty column name":       "#mcw v1\n#columns job,,task,submit_ns,runtime_ns,cores,memory_mb,user\n",
	}
	for name, in := range cases {
		if _, err := (mcwFormat{}).Read(strings.NewReader(in)); !errors.Is(err, ErrBadHeader) {
			t.Errorf("%s: err = %v, want ErrBadHeader", name, err)
		}
	}
}

func TestMCWRejectsMalformedRecords(t *testing.T) {
	header := "#mcw v1\n#columns " + mcwColumns + "\n"
	cases := map[string]string{
		"non-numeric job": header + "x,1,0,1,1,1,u,0,,-\n",
		"bad deps":        header + "1,1,0,1,1,1,u,0,,a;b\n",
		"unbalanced csv":  header + "1,1,0,1,1,1,\"u,0,,-\n",
	}
	for name, in := range cases {
		if _, err := (mcwFormat{}).Read(strings.NewReader(in)); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err = %v, want ErrBadRecord", name, err)
		}
	}
}

func TestFormatRegistry(t *testing.T) {
	names := Formats()
	want := map[string]bool{FormatGWF: false, FormatMCW: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("format %q not registered (have %v)", n, names)
		}
	}
	if _, err := FormatByName("parquet"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("unknown format err = %v, want ErrUnknownFormat", err)
	}
	if _, err := FormatByName(""); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("empty format err = %v, want ErrUnknownFormat", err)
	}
}

func TestResolveFormat(t *testing.T) {
	cases := []struct {
		name, path, want string
	}{
		{"", "trace.mcw", FormatMCW},
		{"", "trace.gwf", FormatGWF},
		{"", "trace.txt", FormatGWF}, // unknown extension: historical default
		{"", "trace", FormatGWF},
		{FormatMCW, "trace.gwf", FormatMCW}, // explicit name wins
	}
	for _, c := range cases {
		f, err := ResolveFormat(c.name, c.path)
		if err != nil {
			t.Fatalf("ResolveFormat(%q, %q): %v", c.name, c.path, err)
		}
		if f.Name() != c.want {
			t.Errorf("ResolveFormat(%q, %q) = %s, want %s", c.name, c.path, f.Name(), c.want)
		}
	}
	if _, err := ResolveFormat("bogus", "x.mcw"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("bogus format err = %v", err)
	}
}

func TestFileSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.mcw")
	w := exactWorkload()
	if err := WriteFile(path, "", w); err != nil {
		t.Fatal(err)
	}
	got, err := File{Path: path}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskCount() != w.TaskCount() || len(got.Jobs) != len(w.Jobs) {
		t.Errorf("loaded %d jobs / %d tasks, want %d / %d",
			len(got.Jobs), got.TaskCount(), len(w.Jobs), w.TaskCount())
	}
}

func TestFileSourceErrors(t *testing.T) {
	if _, err := (File{Path: "/nonexistent/x.mcw"}).Load(); err == nil {
		t.Error("missing file did not error")
	}
	if _, err := (File{Path: "x.mcw", Format: "bogus"}).Load(); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("bogus format err = %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.mcw")
	if err := WriteFile(path, "bogus", nil); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("WriteFile bogus format err = %v", err)
	}
}

func TestGWFFormatMatchesPackageFunctions(t *testing.T) {
	w := &workload.Workload{Jobs: []workload.Job{{
		ID: 1, User: "u", Submit: time.Second,
		Tasks: []workload.Task{{ID: 1, Job: 1, Cores: 1, MemoryMB: 64, Runtime: 2 * time.Second}},
	}}}
	var viaFormat, viaFunc bytes.Buffer
	f, err := FormatByName(FormatGWF)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&viaFormat, w); err != nil {
		t.Fatal(err)
	}
	if err := Write(&viaFunc, w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaFormat.Bytes(), viaFunc.Bytes()) {
		t.Error("gwf registry format diverges from package Write")
	}
}

func TestMCWRejectsTruncatedRecords(t *testing.T) {
	// A short row must be ErrBadRecord, never a zero-filled workload (a
	// partially written trace would otherwise replay as silently
	// different work).
	header := "#mcw v1\n#columns " + mcwColumns + "\n"
	for name, in := range map[string]string{
		"too few fields":  header + "5,3\n",
		"too many fields": header + "1,1,0,1,1,1,u,0,,-,extra\n",
	} {
		if _, err := (mcwFormat{}).Read(strings.NewReader(in)); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err = %v, want ErrBadRecord", name, err)
		}
	}
}

func TestMCWRoundTripsNewlineBearingFields(t *testing.T) {
	// csv quoting may split a field across lines; the reader must parse
	// its own writer's output whatever the user string contains.
	w := &workload.Workload{Jobs: []workload.Job{{
		ID: 1, User: "line1\nline2,with comma", Submit: time.Second,
		Tasks: []workload.Task{{ID: 1, Job: 1, Cores: 1, MemoryMB: 8, Runtime: time.Second, Accelerator: "a\nb"}},
	}}}
	var buf bytes.Buffer
	if err := (mcwFormat{}).Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := mcwFormat{}.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader cannot parse its own writer's output: %v", err)
	}
	if got.Jobs[0].User != w.Jobs[0].User || got.Jobs[0].Tasks[0].Accelerator != "a\nb" {
		t.Errorf("newline fields altered: %+v", got.Jobs[0])
	}
}
