package trace

// The native MCS workload format ("mcw"): a CSV body under a
// self-describing header. Unlike GWF (whose times are millisecond-precision
// seconds), mcw stores every duration as exact integer nanoseconds, so a
// write/read round trip reproduces the workload byte for byte — the
// property the trace-replay determinism contract rests on.
//
// Layout:
//
//	#mcw v1
//	#columns job,task,submit_ns,runtime_ns,cores,memory_mb,user,deadline_ns,accelerator,deps
//	1,1,0,1500000000,1,128,user3,0,,-
//
// '#'-prefixed lines are the header; the "#columns" line names the CSV
// columns, so readers bind fields by name, not position. Unknown columns
// are ignored (forward compatibility); missing required columns are a
// malformed-header error. deps is a semicolon-separated task-ID list or
// "-" when empty. Tasks of one job may span non-adjacent rows; jobs keep
// their first-appearance order.

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mcs/internal/workload"
)

// ErrBadHeader reports a missing or malformed mcw header.
var ErrBadHeader = errors.New("trace: malformed mcw header")

const (
	mcwMagic   = "#mcw v1"
	mcwColumns = "job,task,submit_ns,runtime_ns,cores,memory_mb,user,deadline_ns,accelerator,deps"
)

type mcwFormat struct{}

func (mcwFormat) Name() string { return FormatMCW }

// Write implements Format. The encoding is exact (integer nanoseconds).
func (mcwFormat) Write(out io.Writer, w *workload.Workload) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, mcwMagic)
	fmt.Fprintln(bw, "#columns "+mcwColumns)
	cw := csv.NewWriter(bw)
	for i := range w.Jobs {
		j := &w.Jobs[i]
		for _, t := range j.Tasks {
			deps := "-"
			if len(t.Deps) > 0 {
				parts := make([]string, len(t.Deps))
				for k, d := range t.Deps {
					parts[k] = strconv.FormatInt(int64(d), 10)
				}
				deps = strings.Join(parts, ";")
			}
			rec := []string{
				strconv.FormatInt(int64(j.ID), 10),
				strconv.FormatInt(int64(t.ID), 10),
				strconv.FormatInt(int64(j.Submit), 10),
				strconv.FormatInt(int64(t.Runtime), 10),
				strconv.Itoa(t.Cores),
				strconv.Itoa(t.MemoryMB),
				j.User,
				strconv.FormatInt(int64(j.Deadline), 10),
				t.Accelerator,
				deps,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// mcwRequired are the columns a header must name.
var mcwRequired = []string{"job", "task", "submit_ns", "runtime_ns", "cores", "memory_mb", "user"}

// Read implements Format. The header region ('#'-prefixed lines before the
// first record) is scanned line by line for the magic and the #columns
// binding; the body is then parsed by a real CSV reader, so quoted fields
// may contain commas and newlines, and every record is required to carry
// exactly the header's column count — a truncated record is ErrBadRecord,
// never a silently zero-filled workload.
func (mcwFormat) Read(in io.Reader) (*workload.Workload, error) {
	br := bufio.NewReader(in)
	magicSeen := false
	var col map[string]int
	var firstRecord string
	for firstRecord == "" {
		text, readErr := br.ReadString('\n')
		if readErr != nil && readErr != io.EOF {
			return nil, fmt.Errorf("trace read: %w", readErr)
		}
		trimmed := strings.TrimSpace(text)
		switch {
		case trimmed == "":
			// blank line (or bare EOF): nothing to parse
		case !magicSeen:
			if trimmed != mcwMagic {
				return nil, fmt.Errorf("%w: first line %q, want %q", ErrBadHeader, trimmed, mcwMagic)
			}
			magicSeen = true
		case strings.HasPrefix(trimmed, "#"):
			if rest, ok := strings.CutPrefix(trimmed, "#columns"); ok {
				parsed, err := mcwParseColumns(rest)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
				}
				col = parsed
			}
		default:
			if col == nil {
				return nil, fmt.Errorf("%w: record before #columns line", ErrBadHeader)
			}
			firstRecord = text
		}
		if readErr == io.EOF {
			if !magicSeen {
				return nil, fmt.Errorf("%w: empty input", ErrBadHeader)
			}
			break
		}
	}
	if col == nil {
		return nil, fmt.Errorf("%w: no #columns line", ErrBadHeader)
	}

	jobs := make(map[workload.JobID]*workload.Job)
	var order []workload.JobID
	cr := csv.NewReader(io.MultiReader(strings.NewReader(firstRecord), br))
	cr.FieldsPerRecord = len(col)
	cr.Comment = '#'
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
		if err := mcwAddRecord(jobs, &order, col, fields); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
	}
	w := &workload.Workload{Jobs: make([]workload.Job, 0, len(order))}
	for _, id := range order {
		w.Jobs = append(w.Jobs, *jobs[id])
	}
	return w, nil
}

// mcwParseColumns binds column names to indices and checks the required set.
func mcwParseColumns(rest string) (map[string]int, error) {
	col := make(map[string]int)
	for i, name := range strings.Split(strings.TrimSpace(rest), ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("empty column name")
		}
		if _, dup := col[name]; dup {
			return nil, fmt.Errorf("duplicate column %q", name)
		}
		col[name] = i
	}
	for _, req := range mcwRequired {
		if _, ok := col[req]; !ok {
			return nil, fmt.Errorf("missing required column %q", req)
		}
	}
	return col, nil
}

// mcwAddRecord parses one CSV record into the job map.
func mcwAddRecord(jobs map[workload.JobID]*workload.Job, order *[]workload.JobID, col map[string]int, fields []string) error {
	get := func(name string) (string, bool) {
		i, ok := col[name]
		if !ok || i >= len(fields) {
			return "", false
		}
		return fields[i], true
	}
	getInt := func(name string) (int64, error) {
		s, ok := get(name)
		if !ok {
			return 0, nil
		}
		return strconv.ParseInt(s, 10, 64)
	}
	jobID, err := getInt("job")
	if err != nil {
		return fmt.Errorf("job: %v", err)
	}
	taskID, err := getInt("task")
	if err != nil {
		return fmt.Errorf("task: %v", err)
	}
	submit, err := getInt("submit_ns")
	if err != nil {
		return fmt.Errorf("submit_ns: %v", err)
	}
	runtime, err := getInt("runtime_ns")
	if err != nil {
		return fmt.Errorf("runtime_ns: %v", err)
	}
	cores, err := getInt("cores")
	if err != nil {
		return fmt.Errorf("cores: %v", err)
	}
	memMB, err := getInt("memory_mb")
	if err != nil {
		return fmt.Errorf("memory_mb: %v", err)
	}
	deadline, err := getInt("deadline_ns")
	if err != nil {
		return fmt.Errorf("deadline_ns: %v", err)
	}
	user, _ := get("user")
	accel, _ := get("accelerator")
	var deps []workload.TaskID
	if s, ok := get("deps"); ok && s != "-" && s != "" {
		for _, part := range strings.Split(s, ";") {
			d, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return fmt.Errorf("deps: %v", err)
			}
			deps = append(deps, workload.TaskID(d))
		}
	}
	j, ok := jobs[workload.JobID(jobID)]
	if !ok {
		j = &workload.Job{
			ID:       workload.JobID(jobID),
			User:     user,
			Submit:   time.Duration(submit),
			Deadline: time.Duration(deadline),
		}
		jobs[workload.JobID(jobID)] = j
		*order = append(*order, j.ID)
	}
	j.Tasks = append(j.Tasks, workload.Task{
		ID:          workload.TaskID(taskID),
		Job:         j.ID,
		Cores:       int(cores),
		MemoryMB:    int(memMB),
		Runtime:     time.Duration(runtime),
		Deps:        deps,
		Accelerator: accel,
	})
	return nil
}
