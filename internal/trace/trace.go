// Package trace implements a Grid-Workloads-Archive-style trace format
// (paper ref [139], C16: "tools and instruments to gather valuable ...
// operational traces ... through artifact-repositories"). Traces serialize
// workloads so that experiments are replayable and shareable — the
// reproducibility instrument principle P8 calls for.
//
// The on-disk format (.gwf, "grid workload format") is line-oriented text:
// '#'-prefixed comment/header lines followed by one whitespace-separated
// record per task:
//
//	jobID taskID submitSec runtimeSec cores memoryMB user deps
//
// where deps is a comma-separated list of task IDs or "-" when empty.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"mcs/internal/stats"
	"mcs/internal/workload"
)

// ErrBadRecord reports a malformed trace line.
var ErrBadRecord = errors.New("trace: malformed record")

// Write serializes w in GWF format.
func Write(out io.Writer, w *workload.Workload) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, "# MCS grid workload format v1")
	fmt.Fprintln(bw, "# jobID taskID submitSec runtimeSec cores memoryMB user deps")
	for i := range w.Jobs {
		j := &w.Jobs[i]
		for _, t := range j.Tasks {
			deps := "-"
			if len(t.Deps) > 0 {
				parts := make([]string, len(t.Deps))
				for k, d := range t.Deps {
					parts[k] = strconv.FormatInt(int64(d), 10)
				}
				deps = strings.Join(parts, ",")
			}
			user := j.User
			if user == "" {
				user = "unknown"
			}
			fmt.Fprintf(bw, "%d %d %.3f %.3f %d %d %s %s\n",
				j.ID, t.ID, j.Submit.Seconds(), t.Runtime.Seconds(),
				t.Cores, t.MemoryMB, user, deps)
		}
	}
	return bw.Flush()
}

// Read parses a GWF trace back into a workload. Tasks of the same job are
// grouped; jobs are ordered by submit time.
func Read(in io.Reader) (*workload.Workload, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	jobs := make(map[workload.JobID]*workload.Job)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 8 {
			return nil, fmt.Errorf("%w: line %d has %d fields, want 8", ErrBadRecord, line, len(fields))
		}
		jobID, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d jobID: %v", ErrBadRecord, line, err)
		}
		taskID, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d taskID: %v", ErrBadRecord, line, err)
		}
		submit, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d submit: %v", ErrBadRecord, line, err)
		}
		runtime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d runtime: %v", ErrBadRecord, line, err)
		}
		cores, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d cores: %v", ErrBadRecord, line, err)
		}
		memMB, err := strconv.Atoi(fields[5])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d memory: %v", ErrBadRecord, line, err)
		}
		user := fields[6]
		var deps []workload.TaskID
		if fields[7] != "-" {
			for _, part := range strings.Split(fields[7], ",") {
				d, err := strconv.ParseInt(part, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d deps: %v", ErrBadRecord, line, err)
				}
				deps = append(deps, workload.TaskID(d))
			}
		}
		j, ok := jobs[workload.JobID(jobID)]
		if !ok {
			j = &workload.Job{
				ID:     workload.JobID(jobID),
				User:   user,
				Submit: time.Duration(submit * float64(time.Second)),
			}
			jobs[workload.JobID(jobID)] = j
		}
		j.Tasks = append(j.Tasks, workload.Task{
			ID:       workload.TaskID(taskID),
			Job:      j.ID,
			Cores:    cores,
			MemoryMB: memMB,
			Runtime:  time.Duration(runtime * float64(time.Second)),
			Deps:     deps,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace read: %w", err)
	}
	w := &workload.Workload{Jobs: make([]workload.Job, 0, len(jobs))}
	for _, j := range jobs {
		w.Jobs = append(w.Jobs, *j)
	}
	sort.Slice(w.Jobs, func(i, k int) bool {
		if w.Jobs[i].Submit != w.Jobs[k].Submit {
			return w.Jobs[i].Submit < w.Jobs[k].Submit
		}
		return w.Jobs[i].ID < w.Jobs[k].ID
	})
	return w, nil
}

// Stats summarizes a trace the way GWA trace reports do.
type Stats struct {
	Jobs, Tasks, Users  int
	Span                time.Duration
	RuntimeSeconds      stats.Summary
	TasksPerJob         stats.Summary
	InterarrivalSeconds stats.Summary
	Burstiness          float64
	// TopUserShare is the fraction of jobs submitted by the most active
	// user (the dominant-user phenomenon, paper C5).
	TopUserShare float64
	// Vicissitude is the workload-drift index of [22] measured over
	// one-hour windows (0 = stationary).
	Vicissitude float64
}

// Analyze computes summary statistics of a workload/trace.
func Analyze(w *workload.Workload) Stats {
	var runtimes, sizes, gaps []float64
	var interarrivals []time.Duration
	byUser := make(map[string]int)
	for i := range w.Jobs {
		j := &w.Jobs[i]
		byUser[j.User]++
		sizes = append(sizes, float64(len(j.Tasks)))
		for _, t := range j.Tasks {
			runtimes = append(runtimes, t.Runtime.Seconds())
		}
		if i > 0 {
			gap := j.Submit - w.Jobs[i-1].Submit
			gaps = append(gaps, gap.Seconds())
			interarrivals = append(interarrivals, gap)
		}
	}
	top := 0
	for _, n := range byUser {
		if n > top {
			top = n
		}
	}
	s := Stats{
		Jobs:                len(w.Jobs),
		Tasks:               w.TaskCount(),
		Users:               len(byUser),
		Span:                w.Span(),
		RuntimeSeconds:      stats.Summarize(runtimes),
		TasksPerJob:         stats.Summarize(sizes),
		InterarrivalSeconds: stats.Summarize(gaps),
		Burstiness:          workload.BurstinessIndex(interarrivals),
	}
	if len(w.Jobs) > 0 {
		s.TopUserShare = float64(top) / float64(len(w.Jobs))
	}
	s.Vicissitude = workload.MeasureVicissitude(w, time.Hour).Index()
	return s
}
