package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mcs/internal/workload"
)

func TestRoundTripIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w, err := workload.Generate(workload.GeneratorConfig{Jobs: 50, Shape: workload.RandomDAG}, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(w.Jobs) {
		t.Fatalf("jobs %d != %d", len(got.Jobs), len(w.Jobs))
	}
	for i := range w.Jobs {
		a, b := &w.Jobs[i], &got.Jobs[i]
		if a.ID != b.ID || a.User != b.User {
			t.Fatalf("job %d identity mismatch: %+v vs %+v", i, a.ID, b.ID)
		}
		// Submit times survive at millisecond precision.
		if d := a.Submit - b.Submit; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("job %d submit %v vs %v", i, a.Submit, b.Submit)
		}
		if len(a.Tasks) != len(b.Tasks) {
			t.Fatalf("job %d tasks %d vs %d", i, len(a.Tasks), len(b.Tasks))
		}
		for k := range a.Tasks {
			ta, tb := a.Tasks[k], b.Tasks[k]
			if ta.ID != tb.ID || ta.Cores != tb.Cores || ta.MemoryMB != tb.MemoryMB {
				t.Fatalf("task mismatch: %+v vs %+v", ta, tb)
			}
			if len(ta.Deps) != len(tb.Deps) {
				t.Fatalf("task %d deps %v vs %v", ta.ID, ta.Deps, tb.Deps)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped workload invalid: %v", err)
	}
}

// Property: round-trip preserves structure for arbitrary generated workloads.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, jobs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		w, err := workload.Generate(workload.GeneratorConfig{Jobs: int(jobs%20) + 1}, r)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, w); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return len(got.Jobs) == len(w.Jobs) && got.TaskCount() == w.TaskCount() &&
			got.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n  \n1 1 0.0 10.0 2 512 alice -\n"
	w, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].User != "alice" || w.Jobs[0].Tasks[0].Cores != 2 {
		t.Fatalf("parsed %+v", w.Jobs)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 1 0.0 10.0 2 512 alice",     // 7 fields
		"x 1 0.0 10.0 2 512 alice -",   // bad job id
		"1 y 0.0 10.0 2 512 alice -",   // bad task id
		"1 1 z 10.0 2 512 alice -",     // bad submit
		"1 1 0.0 q 2 512 alice -",      // bad runtime
		"1 1 0.0 10.0 w 512 alice -",   // bad cores
		"1 1 0.0 10.0 2 mem alice -",   // bad memory
		"1 1 0.0 10.0 2 512 alice 1,x", // bad dep
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("malformed line accepted: %q", line)
		}
	}
}

func TestReadGroupsTasksByJob(t *testing.T) {
	in := `
2 3 5.0 1.0 1 64 bob -
1 1 0.0 1.0 1 64 alice -
1 2 0.0 1.0 1 64 alice 1
`
	w, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs=%d, want 2", len(w.Jobs))
	}
	// Sorted by submit: job 1 first.
	if w.Jobs[0].ID != 1 || len(w.Jobs[0].Tasks) != 2 {
		t.Fatalf("job grouping wrong: %+v", w.Jobs)
	}
	if len(w.Jobs[0].Tasks[1].Deps) != 1 {
		t.Error("dependency lost")
	}
}

func TestAnalyze(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	w, err := workload.Generate(workload.GeneratorConfig{Jobs: 200}, r)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(w)
	if s.Jobs != 200 || s.Tasks != w.TaskCount() {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Users < 2 {
		t.Errorf("users=%d", s.Users)
	}
	if s.TopUserShare <= 0 || s.TopUserShare > 1 {
		t.Errorf("top user share=%v", s.TopUserShare)
	}
	// Zipf user skew should make the top user clearly dominant over 1/users.
	if s.TopUserShare < 1.5/float64(s.Users) {
		t.Errorf("no dominant user: share=%v users=%d", s.TopUserShare, s.Users)
	}
	if s.Burstiness <= 0 {
		t.Errorf("burstiness=%v", s.Burstiness)
	}
	if s.RuntimeSeconds.Mean <= 0 || s.Span <= 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(&workload.Workload{})
	if s.Jobs != 0 || s.TopUserShare != 0 {
		t.Errorf("empty analyze: %+v", s)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w, err := workload.Generate(workload.GeneratorConfig{Jobs: 500}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, w); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
