package workload

import (
	"math"
	"math/rand"
	"time"

	"mcs/internal/stats"
)

// ArrivalProcess generates successive inter-arrival times. Implementations
// model the arrival phenomenology the paper highlights: Poisson baselines,
// short-term burstiness ([113]), and diurnal cycles.
type ArrivalProcess interface {
	// Next returns the time until the next arrival, drawn with r.
	Next(r *rand.Rand) time.Duration
}

// Poisson is a homogeneous Poisson arrival process with RatePerHour arrivals
// per hour.
type Poisson struct {
	RatePerHour float64
}

// Next implements ArrivalProcess.
func (p Poisson) Next(r *rand.Rand) time.Duration {
	if p.RatePerHour <= 0 {
		return time.Hour
	}
	hrs := r.ExpFloat64() / p.RatePerHour
	return time.Duration(hrs * float64(time.Hour))
}

// MMPP2 is a two-state Markov-modulated Poisson process: a "calm" state with
// CalmRatePerHour and a "burst" state with BurstRatePerHour, switching with
// mean holding times MeanCalm and MeanBurst. MMPPs reproduce the short-term
// burstiness observed in grid workloads (paper C7, ref [113]).
type MMPP2 struct {
	CalmRatePerHour  float64
	BurstRatePerHour float64
	MeanCalm         time.Duration
	MeanBurst        time.Duration

	inBurst   bool
	stateLeft time.Duration
}

// Next implements ArrivalProcess.
func (m *MMPP2) Next(r *rand.Rand) time.Duration {
	var total time.Duration
	for {
		if m.stateLeft <= 0 {
			m.inBurst = !m.inBurst
			mean := m.MeanCalm
			if m.inBurst {
				mean = m.MeanBurst
			}
			m.stateLeft = time.Duration(r.ExpFloat64() * float64(mean))
			continue
		}
		rate := m.CalmRatePerHour
		if m.inBurst {
			rate = m.BurstRatePerHour
		}
		if rate <= 0 {
			total += m.stateLeft
			m.stateLeft = 0
			continue
		}
		gap := time.Duration(r.ExpFloat64() / rate * float64(time.Hour))
		if gap <= m.stateLeft {
			m.stateLeft -= gap
			return total + gap
		}
		total += m.stateLeft
		m.stateLeft = 0
	}
}

// Diurnal is a non-homogeneous Poisson process whose rate follows a 24-hour
// sinusoid: rate(t) = Base * (1 + Amplitude*sin(2π t/24h + phase)). It uses
// thinning (Lewis & Shedler) against the peak rate. Amplitude must be in
// [0, 1).
type Diurnal struct {
	BasePerHour float64
	Amplitude   float64
	PeakHour    float64 // hour-of-day with maximum rate

	now time.Duration
}

func (d *Diurnal) rateAt(t time.Duration) float64 {
	hours := t.Seconds() / 3600
	phase := 2 * math.Pi * (hours - d.PeakHour + 6) / 24
	return d.BasePerHour * (1 + d.Amplitude*math.Sin(phase))
}

// Next implements ArrivalProcess via thinning.
func (d *Diurnal) Next(r *rand.Rand) time.Duration {
	peak := d.BasePerHour * (1 + d.Amplitude)
	if peak <= 0 {
		return time.Hour
	}
	start := d.now
	for {
		gap := time.Duration(r.ExpFloat64() / peak * float64(time.Hour))
		d.now += gap
		if r.Float64() <= d.rateAt(d.now)/peak {
			return d.now - start
		}
	}
}

// FixedInterval emits arrivals at a constant interval — the controlled
// baseline for experiments.
type FixedInterval struct {
	Interval time.Duration
}

// Next implements ArrivalProcess.
func (f FixedInterval) Next(*rand.Rand) time.Duration { return f.Interval }

// Empirical resamples inter-arrival times from an observed trace
// (bootstrap), preserving the trace's marginal distribution — the
// trace-driven workload modeling of C19/[139]. Construct with NewEmpirical.
type Empirical struct {
	gaps []time.Duration
}

// NewEmpirical builds an empirical arrival process from a workload's
// observed inter-arrival gaps. It returns nil if the workload has fewer
// than two jobs.
func NewEmpirical(w *Workload) *Empirical {
	if len(w.Jobs) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(w.Jobs)-1)
	for i := 1; i < len(w.Jobs); i++ {
		gaps = append(gaps, w.Jobs[i].Submit-w.Jobs[i-1].Submit)
	}
	return &Empirical{gaps: gaps}
}

// Next implements ArrivalProcess.
func (e *Empirical) Next(r *rand.Rand) time.Duration {
	return e.gaps[r.Intn(len(e.gaps))]
}

// Compile-time interface compliance checks.
var (
	_ ArrivalProcess = Poisson{}
	_ ArrivalProcess = (*MMPP2)(nil)
	_ ArrivalProcess = (*Diurnal)(nil)
	_ ArrivalProcess = FixedInterval{}
	_ ArrivalProcess = (*Empirical)(nil)
)

// BurstinessIndex quantifies arrival burstiness as the coefficient of
// variation of inter-arrival times; 1 for Poisson, >1 for bursty processes.
func BurstinessIndex(interarrivals []time.Duration) float64 {
	if len(interarrivals) < 2 {
		return 0
	}
	xs := make([]float64, len(interarrivals))
	for i, d := range interarrivals {
		xs[i] = d.Seconds()
	}
	mean := stats.Mean(xs)
	if mean == 0 {
		return 0
	}
	return stats.Std(xs) / mean
}
