package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"mcs/internal/stats"
)

// Shape selects the dependency structure of generated jobs.
type Shape int

// Job shapes. BagOfTasks has no dependencies; Chain is a linear pipeline;
// ForkJoin is a source, a parallel stage, and a sink; RandomDAG draws random
// layered precedence edges (the structure of scientific workflows such as
// Montage/Epigenomics the paper cites in §6.2).
const (
	BagOfTasks Shape = iota + 1
	Chain
	ForkJoin
	RandomDAG
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case BagOfTasks:
		return "bag-of-tasks"
	case Chain:
		return "chain"
	case ForkJoin:
		return "fork-join"
	case RandomDAG:
		return "random-dag"
	default:
		return "shape(" + strconv.Itoa(int(s)) + ")"
	}
}

// GeneratorConfig parameterizes synthetic workload generation. Zero fields
// take the documented defaults from DefaultGeneratorConfig.
type GeneratorConfig struct {
	Jobs    int
	Arrival ArrivalProcess
	Shape   Shape
	// TasksPerJob draws the number of tasks in each job.
	TasksPerJob stats.Dist
	// RuntimeSeconds draws per-task reference runtimes, in seconds.
	RuntimeSeconds stats.Dist
	// CoresPerTask draws per-task core demand.
	CoresPerTask stats.Dist
	// MemoryMBPerTask draws per-task memory demand.
	MemoryMBPerTask stats.Dist
	// Users is the size of the user population; submissions follow a Zipf
	// popularity over users (dominant-user phenomenon, paper C5 ref [107]).
	Users int
	// UserSkew is the Zipf exponent of the user popularity (>1).
	UserSkew float64
	// DeadlineFactor, when positive, assigns each job a deadline of
	// Submit + DeadlineFactor × CriticalPath.
	DeadlineFactor float64
}

// DefaultGeneratorConfig returns a configuration resembling published grid
// workload models ([39]): lognormal runtimes, geometric-ish job sizes, Zipf
// user popularity.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Jobs:            100,
		Arrival:         Poisson{RatePerHour: 60},
		Shape:           BagOfTasks,
		TasksPerJob:     stats.Truncate{D: stats.LogNormal{Mu: 1.2, Sigma: 0.8}, Lo: 1, Hi: 64},
		RuntimeSeconds:  stats.Truncate{D: stats.LogNormal{Mu: 4.5, Sigma: 1.0}, Lo: 1, Hi: 7200},
		CoresPerTask:    stats.Deterministic{Value: 1},
		MemoryMBPerTask: stats.Truncate{D: stats.LogNormal{Mu: 6.5, Sigma: 0.7}, Lo: 128, Hi: 16384},
		Users:           32,
		UserSkew:        1.6,
	}
}

// Generate produces a synthetic workload from cfg using r. The result is
// valid (Workload.Validate passes) and ordered by submit time.
func Generate(cfg GeneratorConfig, r *rand.Rand) (*Workload, error) {
	def := DefaultGeneratorConfig()
	if cfg.Jobs <= 0 {
		cfg.Jobs = def.Jobs
	}
	if cfg.Arrival == nil {
		cfg.Arrival = def.Arrival
	}
	if cfg.Shape == 0 {
		cfg.Shape = def.Shape
	}
	if cfg.TasksPerJob == nil {
		cfg.TasksPerJob = def.TasksPerJob
	}
	if cfg.RuntimeSeconds == nil {
		cfg.RuntimeSeconds = def.RuntimeSeconds
	}
	if cfg.CoresPerTask == nil {
		cfg.CoresPerTask = def.CoresPerTask
	}
	if cfg.MemoryMBPerTask == nil {
		cfg.MemoryMBPerTask = def.MemoryMBPerTask
	}
	if cfg.Users <= 0 {
		cfg.Users = def.Users
	}
	if cfg.UserSkew <= 1 {
		cfg.UserSkew = def.UserSkew
	}

	userDist := stats.Zipf{S: cfg.UserSkew, N: uint64(cfg.Users)}
	w := &Workload{Jobs: make([]Job, 0, cfg.Jobs)}
	var clock time.Duration
	var nextTask TaskID
	for i := 0; i < cfg.Jobs; i++ {
		clock += cfg.Arrival.Next(r)
		n := int(cfg.TasksPerJob.Sample(r))
		if n < 1 {
			n = 1
		}
		job := Job{
			ID:     JobID(i + 1),
			User:   "user" + strconv.Itoa(int(userDist.Sample(r))),
			Submit: clock,
		}
		ids := make([]TaskID, n)
		for t := 0; t < n; t++ {
			nextTask++
			ids[t] = nextTask
			rt := cfg.RuntimeSeconds.Sample(r)
			if rt < 0.001 {
				rt = 0.001
			}
			job.Tasks = append(job.Tasks, Task{
				ID:       nextTask,
				Job:      job.ID,
				Cores:    maxInt(1, int(cfg.CoresPerTask.Sample(r))),
				MemoryMB: maxInt(1, int(cfg.MemoryMBPerTask.Sample(r))),
				Runtime:  time.Duration(rt * float64(time.Second)),
			})
		}
		wireShape(&job, ids, cfg.Shape, r)
		if cfg.DeadlineFactor > 0 {
			job.Deadline = job.Submit + time.Duration(cfg.DeadlineFactor*float64(job.CriticalPath()))
		}
		if err := job.Validate(); err != nil {
			return nil, fmt.Errorf("generate: %w", err)
		}
		w.Jobs = append(w.Jobs, job)
	}
	return w, nil
}

// wireShape adds dependency edges realizing the requested job shape.
func wireShape(job *Job, ids []TaskID, shape Shape, r *rand.Rand) {
	n := len(ids)
	switch shape {
	case Chain:
		for t := 1; t < n; t++ {
			job.Tasks[t].Deps = []TaskID{ids[t-1]}
		}
	case ForkJoin:
		if n >= 3 {
			for t := 1; t < n-1; t++ {
				job.Tasks[t].Deps = []TaskID{ids[0]}
			}
			deps := make([]TaskID, 0, n-2)
			deps = append(deps, ids[1:n-1]...)
			job.Tasks[n-1].Deps = deps
		} else if n == 2 {
			job.Tasks[1].Deps = []TaskID{ids[0]}
		}
	case RandomDAG:
		// Layered random DAG: each task depends on 1-3 random tasks from
		// earlier positions, guaranteeing acyclicity.
		for t := 1; t < n; t++ {
			k := 1 + r.Intn(3)
			if k > t {
				k = t
			}
			seen := make(map[int]bool, k)
			for len(seen) < k {
				seen[r.Intn(t)] = true
			}
			for idx := range seen {
				job.Tasks[t].Deps = append(job.Tasks[t].Deps, ids[idx])
			}
		}
	case BagOfTasks:
		// no edges
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
