package workload

// This file maps the scenario-document vocabulary (arrival-pattern and
// job-shape names) to configured model instances. The canonical rates are
// the ones the original mcsim datacenter schema used; every registry
// adapter and CLI that accepts "pattern"/"shape" strings resolves them
// here so the vocabulary cannot drift between runners.

import (
	"fmt"
	"time"
)

// ArrivalByName returns the canonical arrival process for a scenario
// document's "pattern" field. The empty name defaults to "poisson".
func ArrivalByName(name string) (ArrivalProcess, error) {
	switch name {
	case "", "poisson":
		return Poisson{RatePerHour: 120}, nil
	case "bursty":
		return &MMPP2{
			CalmRatePerHour: 30, BurstRatePerHour: 600,
			MeanCalm: time.Hour, MeanBurst: 10 * time.Minute,
		}, nil
	case "diurnal":
		return &Diurnal{BasePerHour: 120, Amplitude: 0.8, PeakHour: 14}, nil
	default:
		return nil, fmt.Errorf("unknown arrival pattern %q", name)
	}
}

// ShapeByName returns the job shape for a scenario document's "shape"
// field. The empty name defaults to "bag".
func ShapeByName(name string) (Shape, error) {
	switch name {
	case "", "bag":
		return BagOfTasks, nil
	case "chain":
		return Chain, nil
	case "forkjoin":
		return ForkJoin, nil
	case "dag":
		return RandomDAG, nil
	default:
		return 0, fmt.Errorf("unknown shape %q", name)
	}
}
