package workload

// The workload-source layer: one deterministic interface behind which
// "generate from RNG parameters" and "replay from a trace file" are
// interchangeable. Scenario adapters consume a Source instead of calling a
// generator or a trace reader directly, which is what lets every
// trace-capable scenario export the workload it ran and replay it to a
// byte-identical result (paper P8, C16/C19: experiments reconstructible
// from a document plus artifact files).
//
// The concrete sources are Synthetic and Inline here, plus trace.File in
// internal/trace (kept there so this package does not depend on the trace
// format registry).

import (
	"fmt"
	"math/rand"
)

// Source yields the workload a scenario runs. Load must be deterministic:
// two calls on equal sources return equal workloads, byte for byte, so a
// scenario fed by a Source is reproducible regardless of whether the
// workload was synthesized or replayed.
type Source interface {
	// Load materializes the workload. Implementations must not retain or
	// mutate the returned value across calls.
	Load() (*Workload, error)
}

// Synthetic generates a workload from a deterministic RNG seeded with Seed.
// Gen is the model-specific generator (e.g. a closure over a
// GeneratorConfig, a FaaS invocation synthesizer, a gaming session
// synthesizer); keeping it a function keeps this package free of ecosystem
// knowledge.
type Synthetic struct {
	Seed int64
	Gen  func(r *rand.Rand) (*Workload, error)
}

// Load implements Source.
func (s Synthetic) Load() (*Workload, error) {
	if s.Gen == nil {
		return nil, fmt.Errorf("workload: synthetic source has no generator")
	}
	return s.Gen(rand.New(rand.NewSource(s.Seed)))
}

// Inline wraps an already-materialized workload (e.g. one built in code or
// carried verbatim in a scenario document).
type Inline struct {
	W *Workload
}

// Load implements Source.
func (s Inline) Load() (*Workload, error) {
	if s.W == nil {
		return nil, fmt.Errorf("workload: inline source has no workload")
	}
	return s.W, nil
}
