package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestSyntheticSourceIsDeterministic(t *testing.T) {
	src := Synthetic{
		Seed: 9,
		Gen: func(r *rand.Rand) (*Workload, error) {
			return Generate(GeneratorConfig{Jobs: 20}, r)
		},
	}
	a, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 20 || len(b.Jobs) != 20 {
		t.Fatalf("generated %d / %d jobs, want 20", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i].Submit != b.Jobs[i].Submit || a.Jobs[i].User != b.Jobs[i].User {
			t.Fatalf("job %d differs between equal-source loads", i)
		}
	}
	// A different seed must produce a different workload.
	other, err := Synthetic{Seed: 10, Gen: src.Gen}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if other.Jobs[0].Submit == a.Jobs[0].Submit && other.Jobs[0].User == a.Jobs[0].User &&
		other.Span() == a.Span() {
		t.Error("seed change did not alter the synthetic workload")
	}
}

func TestSyntheticSourceWithoutGenerator(t *testing.T) {
	if _, err := (Synthetic{Seed: 1}).Load(); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestInlineSource(t *testing.T) {
	w := &Workload{Jobs: []Job{{
		ID: 1, User: "u", Submit: time.Second,
		Tasks: []Task{{ID: 1, Job: 1, Cores: 1, Runtime: time.Second}},
	}}}
	got, err := Inline{W: w}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Error("inline source did not return its workload")
	}
	if _, err := (Inline{}).Load(); err == nil {
		t.Error("nil inline workload accepted")
	}
}
