package workload

import (
	"time"

	"mcs/internal/stats"
)

// This file quantifies vicissitude — the paper's term (ref [22], §2.1, C3)
// for "the presence of workflows of tasks that are arbitrarily compute- and
// data-intensive" whose challenges "become more prominent at seemingly
// arbitrary moments of time". Operationally: how much the workload's
// character drifts between adjacent time windows, measured as the mean
// two-sample KS distance over per-window task-runtime and job-size
// distributions.

// Vicissitude summarizes workload drift over time.
type Vicissitude struct {
	// Windows is the number of analysis windows compared.
	Windows int
	// RuntimeDrift is the mean KS distance between adjacent windows'
	// task-runtime distributions, in [0, 1].
	RuntimeDrift float64
	// SizeDrift is the same for job sizes (tasks per job).
	SizeDrift float64
	// MaxDrift is the largest adjacent-window KS distance observed on
	// either dimension (the "arbitrary moment" spike).
	MaxDrift float64
}

// Index returns the combined vicissitude index: the mean of the two drift
// dimensions, in [0, 1]. Stationary workloads score near 0.
func (v Vicissitude) Index() float64 {
	return (v.RuntimeDrift + v.SizeDrift) / 2
}

// MeasureVicissitude splits the workload into windows of the given span and
// measures distribution drift between adjacent windows. Windows with fewer
// than 5 jobs are merged forward; fewer than two usable windows yields the
// zero value.
func MeasureVicissitude(w *Workload, window time.Duration) Vicissitude {
	if window <= 0 || len(w.Jobs) == 0 {
		return Vicissitude{}
	}
	type bucket struct {
		runtimes []float64
		sizes    []float64
	}
	var buckets []bucket
	start := w.Jobs[0].Submit
	cur := bucket{}
	boundary := start + window
	flush := func() {
		if len(cur.sizes) >= 5 {
			buckets = append(buckets, cur)
			cur = bucket{}
		}
		// Small windows keep accumulating into the next one.
	}
	for i := range w.Jobs {
		j := &w.Jobs[i]
		for j.Submit >= boundary {
			flush()
			boundary += window
		}
		cur.sizes = append(cur.sizes, float64(len(j.Tasks)))
		for _, t := range j.Tasks {
			cur.runtimes = append(cur.runtimes, t.Runtime.Seconds())
		}
	}
	flush()
	if len(buckets) < 2 {
		return Vicissitude{}
	}
	v := Vicissitude{Windows: len(buckets)}
	var rtSum, szSum float64
	for i := 1; i < len(buckets); i++ {
		rt := stats.KSTest(buckets[i-1].runtimes, buckets[i].runtimes).D
		sz := stats.KSTest(buckets[i-1].sizes, buckets[i].sizes).D
		rtSum += rt
		szSum += sz
		if rt > v.MaxDrift {
			v.MaxDrift = rt
		}
		if sz > v.MaxDrift {
			v.MaxDrift = sz
		}
	}
	n := float64(len(buckets) - 1)
	v.RuntimeDrift = rtSum / n
	v.SizeDrift = szSum / n
	return v
}
