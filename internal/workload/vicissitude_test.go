package workload

import (
	"math/rand"
	"testing"
	"time"

	"mcs/internal/stats"
)

// stationaryWorkload draws every window from the same distributions.
func stationaryWorkload(t *testing.T) *Workload {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	w, err := Generate(GeneratorConfig{
		Jobs:    400,
		Arrival: Poisson{RatePerHour: 240},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// shiftingWorkload switches regime halfway: short small jobs, then long
// wide jobs — the paper's "challenges become prominent at arbitrary
// moments".
func shiftingWorkload(t *testing.T) *Workload {
	t.Helper()
	r := rand.New(rand.NewSource(2))
	a, err := Generate(GeneratorConfig{
		Jobs:           200,
		Arrival:        Poisson{RatePerHour: 240},
		RuntimeSeconds: stats.Truncate{D: stats.LogNormal{Mu: 3, Sigma: 0.3}, Lo: 5, Hi: 120},
		TasksPerJob:    stats.Uniform{Lo: 1, Hi: 4},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GeneratorConfig{
		Jobs:           200,
		Arrival:        Poisson{RatePerHour: 240},
		RuntimeSeconds: stats.Truncate{D: stats.LogNormal{Mu: 6.5, Sigma: 0.3}, Lo: 300, Hi: 7200},
		TasksPerJob:    stats.Uniform{Lo: 16, Hi: 48},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	offset := a.Jobs[len(a.Jobs)-1].Submit
	var nextTask TaskID = 100000
	for i := range b.Jobs {
		b.Jobs[i].Submit += offset
		b.Jobs[i].ID += 10000
		for k := range b.Jobs[i].Tasks {
			nextTask++
			b.Jobs[i].Tasks[k].ID = nextTask
			b.Jobs[i].Tasks[k].Job = b.Jobs[i].ID
		}
	}
	return &Workload{Jobs: append(a.Jobs, b.Jobs...)}
}

func TestVicissitudeSeparatesStationaryFromShifting(t *testing.T) {
	window := 15 * time.Minute
	stat := MeasureVicissitude(stationaryWorkload(t), window)
	shift := MeasureVicissitude(shiftingWorkload(t), window)
	if stat.Windows < 2 || shift.Windows < 2 {
		t.Fatalf("too few windows: %d/%d", stat.Windows, shift.Windows)
	}
	if shift.Index() <= stat.Index() {
		t.Errorf("shifting index %v not above stationary %v", shift.Index(), stat.Index())
	}
	// The regime change shows as a large max drift.
	if shift.MaxDrift < 0.8 {
		t.Errorf("regime change max drift=%v, want near 1", shift.MaxDrift)
	}
	if stat.Index() < 0 || stat.Index() > 1 || shift.Index() > 1 {
		t.Errorf("indices out of range: %v %v", stat.Index(), shift.Index())
	}
}

func TestVicissitudeDegenerate(t *testing.T) {
	if v := MeasureVicissitude(&Workload{}, time.Minute); v.Windows != 0 || v.Index() != 0 {
		t.Errorf("empty workload: %+v", v)
	}
	w := stationaryWorkload(t)
	if v := MeasureVicissitude(w, 0); v.Windows != 0 {
		t.Errorf("zero window: %+v", v)
	}
	// A window larger than the span gives a single bucket → zero value.
	if v := MeasureVicissitude(w, 1000*time.Hour); v.Windows != 0 {
		t.Errorf("one-bucket workload: %+v", v)
	}
}
