// Package workload models the units of work that flow through computer
// ecosystems: tasks, jobs, bags-of-tasks, and workflow DAGs, together with
// the stochastic arrival processes that drive them. It implements the
// workload-model substrate the paper builds on (§3.3 "statistical modeling of
// workloads", C3 "vicissitude", C7 "workloads can change drastically over
// both short and long periods of time").
package workload

import (
	"errors"
	"fmt"
	"time"
)

// TaskID identifies a task uniquely within a workload.
type TaskID int64

// JobID identifies a job uniquely within a workload.
type JobID int64

// Task is the smallest schedulable unit: it demands Cores cores and MemoryMB
// memory for Runtime of work measured on a reference-speed (1.0) machine.
// Dependencies (workflow edges) are task IDs within the same job that must
// complete before this task may start.
type Task struct {
	ID       TaskID
	Job      JobID
	Cores    int
	MemoryMB int
	// Runtime is the execution time on a reference machine of speed 1.0;
	// a machine of speed s executes the task in Runtime/s.
	Runtime time.Duration
	// Deps lists tasks (same job) that must finish before this one starts.
	Deps []TaskID
	// Accelerator, when set, constrains the task to machines whose class
	// carries the named accelerator (paper C4: "applications require
	// special hardware, such as GPUs").
	Accelerator string
}

// Job is a set of tasks submitted together at Submit by User. A job with no
// inter-task dependencies is a bag-of-tasks; with dependencies it is a
// workflow.
type Job struct {
	ID     JobID
	User   string
	Submit time.Duration
	Tasks  []Task
	// Deadline, when positive, is an absolute completion deadline (a
	// non-functional requirement attached to the job, paper C3).
	Deadline time.Duration
}

// TotalWork returns the sum of task runtimes weighted by core demand — the
// total core-seconds the job needs on reference hardware.
func (j *Job) TotalWork() time.Duration {
	var total time.Duration
	for _, t := range j.Tasks {
		total += time.Duration(int64(t.Runtime) * int64(t.Cores))
	}
	return total
}

// MaxParallelism returns the maximum number of tasks that can run
// concurrently, i.e. the maximum width over the levels of the dependency DAG.
// For bags-of-tasks this is the task count.
func (j *Job) MaxParallelism() int {
	levels := j.Levels()
	maxW := 0
	for _, level := range levels {
		if len(level) > maxW {
			maxW = len(level)
		}
	}
	return maxW
}

// Levels performs a topological leveling of the job's DAG: level 0 holds
// tasks without dependencies, level k tasks whose longest dependency chain
// has length k. It returns nil for cyclic (invalid) jobs.
func (j *Job) Levels() [][]TaskID {
	byID := make(map[TaskID]*Task, len(j.Tasks))
	for i := range j.Tasks {
		byID[j.Tasks[i].ID] = &j.Tasks[i]
	}
	level := make(map[TaskID]int, len(j.Tasks))
	var visit func(id TaskID, stack map[TaskID]bool) (int, bool)
	visit = func(id TaskID, stack map[TaskID]bool) (int, bool) {
		if l, ok := level[id]; ok {
			return l, true
		}
		if stack[id] {
			return 0, false // cycle
		}
		stack[id] = true
		defer delete(stack, id)
		t, ok := byID[id]
		if !ok {
			return 0, false // dangling dependency
		}
		l := 0
		for _, dep := range t.Deps {
			dl, ok := visit(dep, stack)
			if !ok {
				return 0, false
			}
			if dl+1 > l {
				l = dl + 1
			}
		}
		level[id] = l
		return l, true
	}
	maxL := 0
	for i := range j.Tasks {
		l, ok := visit(j.Tasks[i].ID, map[TaskID]bool{})
		if !ok {
			return nil
		}
		if l > maxL {
			maxL = l
		}
	}
	out := make([][]TaskID, maxL+1)
	for i := range j.Tasks {
		l := level[j.Tasks[i].ID]
		out[l] = append(out[l], j.Tasks[i].ID)
	}
	return out
}

// CriticalPath returns the length of the longest dependency chain measured in
// reference runtime — the minimum possible makespan with unlimited resources.
// It returns 0 for cyclic jobs.
func (j *Job) CriticalPath() time.Duration {
	byID := make(map[TaskID]*Task, len(j.Tasks))
	for i := range j.Tasks {
		byID[j.Tasks[i].ID] = &j.Tasks[i]
	}
	memo := make(map[TaskID]time.Duration, len(j.Tasks))
	var visit func(id TaskID, stack map[TaskID]bool) (time.Duration, bool)
	visit = func(id TaskID, stack map[TaskID]bool) (time.Duration, bool) {
		if v, ok := memo[id]; ok {
			return v, true
		}
		if stack[id] {
			return 0, false
		}
		stack[id] = true
		defer delete(stack, id)
		t, ok := byID[id]
		if !ok {
			return 0, false
		}
		var longest time.Duration
		for _, dep := range t.Deps {
			d, ok := visit(dep, stack)
			if !ok {
				return 0, false
			}
			if d > longest {
				longest = d
			}
		}
		total := longest + t.Runtime
		memo[id] = total
		return total, true
	}
	var cp time.Duration
	for i := range j.Tasks {
		v, ok := visit(j.Tasks[i].ID, map[TaskID]bool{})
		if !ok {
			return 0
		}
		if v > cp {
			cp = v
		}
	}
	return cp
}

// Validate checks structural invariants: unique task IDs, acyclic
// dependencies, positive runtimes and core demands.
func (j *Job) Validate() error {
	seen := make(map[TaskID]bool, len(j.Tasks))
	for _, t := range j.Tasks {
		if seen[t.ID] {
			return fmt.Errorf("job %d: duplicate task id %d", j.ID, t.ID)
		}
		seen[t.ID] = true
		if t.Runtime <= 0 {
			return fmt.Errorf("job %d task %d: non-positive runtime %v", j.ID, t.ID, t.Runtime)
		}
		if t.Cores <= 0 {
			return fmt.Errorf("job %d task %d: non-positive core demand %d", j.ID, t.ID, t.Cores)
		}
	}
	for _, t := range j.Tasks {
		for _, dep := range t.Deps {
			if !seen[dep] {
				return fmt.Errorf("job %d task %d: dangling dependency %d", j.ID, t.ID, dep)
			}
		}
	}
	if j.Levels() == nil {
		return fmt.Errorf("job %d: dependency cycle", j.ID)
	}
	return nil
}

// Workload is an ordered collection of jobs (by submit time).
type Workload struct {
	Jobs []Job
}

// Validate validates every job and checks submit-time ordering.
func (w *Workload) Validate() error {
	var last time.Duration
	for i := range w.Jobs {
		if err := w.Jobs[i].Validate(); err != nil {
			return err
		}
		if w.Jobs[i].Submit < last {
			return errors.New("workload: jobs not ordered by submit time")
		}
		last = w.Jobs[i].Submit
	}
	return nil
}

// TaskCount returns the total number of tasks across all jobs.
func (w *Workload) TaskCount() int {
	n := 0
	for i := range w.Jobs {
		n += len(w.Jobs[i].Tasks)
	}
	return n
}

// Span returns the duration between the first and last job submission.
func (w *Workload) Span() time.Duration {
	if len(w.Jobs) == 0 {
		return 0
	}
	return w.Jobs[len(w.Jobs)-1].Submit - w.Jobs[0].Submit
}

// Users returns the distinct users in submission order of first appearance.
func (w *Workload) Users() []string {
	seen := make(map[string]bool)
	var users []string
	for i := range w.Jobs {
		u := w.Jobs[i].User
		if !seen[u] {
			seen[u] = true
			users = append(users, u)
		}
	}
	return users
}
