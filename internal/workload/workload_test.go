package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mcs/internal/stats"
)

func chainJob(n int) Job {
	j := Job{ID: 1, User: "u"}
	var prev TaskID
	for i := 1; i <= n; i++ {
		t := Task{ID: TaskID(i), Job: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second}
		if prev != 0 {
			t.Deps = []TaskID{prev}
		}
		prev = t.ID
		j.Tasks = append(j.Tasks, t)
	}
	return j
}

func TestJobLevelsChain(t *testing.T) {
	j := chainJob(5)
	levels := j.Levels()
	if len(levels) != 5 {
		t.Fatalf("chain of 5 has %d levels, want 5", len(levels))
	}
	for i, level := range levels {
		if len(level) != 1 || level[0] != TaskID(i+1) {
			t.Errorf("level %d = %v", i, level)
		}
	}
	if j.MaxParallelism() != 1 {
		t.Errorf("chain parallelism=%d, want 1", j.MaxParallelism())
	}
	if cp := j.CriticalPath(); cp != 5*time.Second {
		t.Errorf("chain critical path=%v, want 5s", cp)
	}
}

func TestJobLevelsForkJoin(t *testing.T) {
	j := Job{ID: 1, Tasks: []Task{
		{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second},
		{ID: 2, Cores: 1, MemoryMB: 1, Runtime: 2 * time.Second, Deps: []TaskID{1}},
		{ID: 3, Cores: 1, MemoryMB: 1, Runtime: 3 * time.Second, Deps: []TaskID{1}},
		{ID: 4, Cores: 1, MemoryMB: 1, Runtime: time.Second, Deps: []TaskID{2, 3}},
	}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := j.MaxParallelism(); got != 2 {
		t.Errorf("parallelism=%d, want 2", got)
	}
	// Critical path: 1 (1s) -> 3 (3s) -> 4 (1s) = 5s.
	if cp := j.CriticalPath(); cp != 5*time.Second {
		t.Errorf("critical path=%v, want 5s", cp)
	}
}

func TestJobValidateRejectsCycle(t *testing.T) {
	j := Job{ID: 1, Tasks: []Task{
		{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second, Deps: []TaskID{2}},
		{ID: 2, Cores: 1, MemoryMB: 1, Runtime: time.Second, Deps: []TaskID{1}},
	}}
	if err := j.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	if j.Levels() != nil {
		t.Error("Levels of cyclic job must be nil")
	}
	if j.CriticalPath() != 0 {
		t.Error("CriticalPath of cyclic job must be 0")
	}
}

func TestJobValidateRejectsBadFields(t *testing.T) {
	cases := []Job{
		{ID: 1, Tasks: []Task{{ID: 1, Cores: 1, MemoryMB: 1, Runtime: 0}}},
		{ID: 1, Tasks: []Task{{ID: 1, Cores: 0, MemoryMB: 1, Runtime: time.Second}}},
		{ID: 1, Tasks: []Task{
			{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second},
			{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second},
		}},
		{ID: 1, Tasks: []Task{{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second, Deps: []TaskID{9}}}},
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestTotalWorkWeightsCores(t *testing.T) {
	j := Job{Tasks: []Task{
		{ID: 1, Cores: 2, MemoryMB: 1, Runtime: 3 * time.Second},
		{ID: 2, Cores: 1, MemoryMB: 1, Runtime: 4 * time.Second},
	}}
	if got := j.TotalWork(); got != 10*time.Second {
		t.Errorf("TotalWork=%v, want 10s", got)
	}
}

func TestPoissonArrivalMeanRate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := Poisson{RatePerHour: 120} // mean gap 30s
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next(r)
	}
	mean := total / n
	if mean < 27*time.Second || mean > 33*time.Second {
		t.Errorf("mean inter-arrival %v, want ≈30s", mean)
	}
}

func TestMMPP2IsBurstierThanPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := &MMPP2{
		CalmRatePerHour:  10,
		BurstRatePerHour: 600,
		MeanCalm:         time.Hour,
		MeanBurst:        10 * time.Minute,
	}
	p := Poisson{RatePerHour: 60}
	gapsM := make([]time.Duration, 5000)
	gapsP := make([]time.Duration, 5000)
	for i := range gapsM {
		gapsM[i] = m.Next(r)
		gapsP[i] = p.Next(r)
	}
	bm, bp := BurstinessIndex(gapsM), BurstinessIndex(gapsP)
	if bm <= bp {
		t.Errorf("MMPP burstiness %v not greater than Poisson %v", bm, bp)
	}
	if bp < 0.8 || bp > 1.2 {
		t.Errorf("Poisson burstiness %v, want ≈1", bp)
	}
}

func TestDiurnalPeaksAtPeakHour(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := &Diurnal{BasePerHour: 100, Amplitude: 0.9, PeakHour: 14}
	counts := make([]int, 24)
	var clock time.Duration
	for clock < 14*24*time.Hour {
		gap := d.Next(r)
		clock += gap
		hour := int(clock.Hours()) % 24
		counts[hour]++
	}
	peakBucket := (counts[13] + counts[14] + counts[15]) / 3
	troughBucket := (counts[1] + counts[2] + counts[3]) / 3
	if peakBucket <= troughBucket {
		t.Errorf("peak-hour arrivals %d not above trough %d", peakBucket, troughBucket)
	}
}

func TestFixedInterval(t *testing.T) {
	f := FixedInterval{Interval: 7 * time.Second}
	if f.Next(nil) != 7*time.Second {
		t.Error("fixed interval wrong")
	}
}

func TestGenerateDefaultsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	w, err := Generate(GeneratorConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 100 {
		t.Errorf("jobs=%d, want default 100", len(w.Jobs))
	}
	if w.TaskCount() < 100 {
		t.Errorf("task count=%d suspiciously low", w.TaskCount())
	}
	if len(w.Users()) < 2 {
		t.Errorf("users=%d, want several", len(w.Users()))
	}
	if w.Span() <= 0 {
		t.Error("span must be positive")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []Shape{BagOfTasks, Chain, ForkJoin, RandomDAG} {
		r := rand.New(rand.NewSource(5))
		w, err := Generate(GeneratorConfig{
			Jobs:        20,
			Shape:       shape,
			TasksPerJob: stats.Uniform{Lo: 4, Hi: 12},
		}, r)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		for i := range w.Jobs {
			j := &w.Jobs[i]
			par := j.MaxParallelism()
			switch shape {
			case Chain:
				if par != 1 {
					t.Errorf("chain job parallelism=%d", par)
				}
			case ForkJoin:
				if len(j.Tasks) >= 3 && par != len(j.Tasks)-2 {
					t.Errorf("fork-join parallelism=%d tasks=%d", par, len(j.Tasks))
				}
			case BagOfTasks:
				if par != len(j.Tasks) {
					t.Errorf("bag parallelism=%d tasks=%d", par, len(j.Tasks))
				}
			}
		}
		if shape.String() == "" {
			t.Error("empty shape name")
		}
	}
}

func TestGenerateDeadlines(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	w, err := Generate(GeneratorConfig{Jobs: 10, DeadlineFactor: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if j.Deadline <= j.Submit {
			t.Errorf("job %d deadline %v not after submit %v", j.ID, j.Deadline, j.Submit)
		}
	}
}

// Property: generated workloads are always valid and deterministic per seed.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed int64, jobs uint8) bool {
		n := int(jobs%50) + 1
		gen := func() *Workload {
			r := rand.New(rand.NewSource(seed))
			w, err := Generate(GeneratorConfig{Jobs: n, Shape: RandomDAG}, r)
			if err != nil {
				return nil
			}
			return w
		}
		w1, w2 := gen(), gen()
		if w1 == nil || w2 == nil {
			return false
		}
		if w1.Validate() != nil {
			return false
		}
		if len(w1.Jobs) != len(w2.Jobs) {
			return false
		}
		for i := range w1.Jobs {
			if w1.Jobs[i].Submit != w2.Jobs[i].Submit ||
				len(w1.Jobs[i].Tasks) != len(w2.Jobs[i].Tasks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadValidateOrdering(t *testing.T) {
	w := Workload{Jobs: []Job{
		{ID: 1, Submit: 10 * time.Second, Tasks: []Task{{ID: 1, Cores: 1, MemoryMB: 1, Runtime: time.Second}}},
		{ID: 2, Submit: 5 * time.Second, Tasks: []Task{{ID: 2, Cores: 1, MemoryMB: 1, Runtime: time.Second}}},
	}}
	if err := w.Validate(); err == nil {
		t.Fatal("out-of-order submits accepted")
	}
}

func BenchmarkGenerate1000Jobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(1))
		if _, err := Generate(GeneratorConfig{Jobs: 1000}, r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEmpiricalArrivalPreservesDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	src, err := Generate(GeneratorConfig{
		Jobs: 400,
		Arrival: &MMPP2{
			CalmRatePerHour: 20, BurstRatePerHour: 600,
			MeanCalm: time.Hour, MeanBurst: 10 * time.Minute,
		},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	emp := NewEmpirical(src)
	if emp == nil {
		t.Fatal("empirical process not built")
	}
	var gapsSrc, gapsEmp []time.Duration
	for i := 1; i < len(src.Jobs); i++ {
		gapsSrc = append(gapsSrc, src.Jobs[i].Submit-src.Jobs[i-1].Submit)
	}
	for i := 0; i < 2000; i++ {
		gapsEmp = append(gapsEmp, emp.Next(r))
	}
	// Burstiness (CV of gaps) must carry over from the source trace.
	bs, be := BurstinessIndex(gapsSrc), BurstinessIndex(gapsEmp)
	if be < bs*0.6 || be > bs*1.4 {
		t.Errorf("resampled burstiness %v far from source %v", be, bs)
	}
	// Replay: a workload generated from the empirical process validates.
	replay, err := Generate(GeneratorConfig{Jobs: 100, Arrival: emp}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalNeedsTwoJobs(t *testing.T) {
	if NewEmpirical(&Workload{}) != nil {
		t.Error("empirical built from empty workload")
	}
	one := &Workload{Jobs: []Job{{ID: 1}}}
	if NewEmpirical(one) != nil {
		t.Error("empirical built from single job")
	}
}
